#include "bench/bench_common.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <thread>

namespace qbs::bench {
namespace {

double EnvDouble(const char* name, double fallback) {
  const char* s = std::getenv(name);
  return s == nullptr ? fallback : std::atof(s);
}

}  // namespace

double EnvScale() { return EnvDouble("QBS_BENCH_SCALE", 1.0); }

size_t EnvPairs() {
  return static_cast<size_t>(EnvDouble("QBS_BENCH_PAIRS", 500));
}

double EnvBudgetSeconds() { return EnvDouble("QBS_BENCH_BUDGET", 10.0); }

size_t EnvThreads() {
  const double v = EnvDouble("QBS_BENCH_THREADS", 0);
  if (v > 0) return static_cast<size_t>(v);
  const size_t hw = std::thread::hardware_concurrency();
  // The paper parallelizes QbS-P with up to 12 threads.
  return std::min<size_t>(hw == 0 ? 1 : hw, 12);
}

std::vector<DatasetSpec> SelectedDatasets() {
  std::vector<DatasetSpec> result;
  const char* filter = std::getenv("QBS_BENCH_DATASETS");
  if (filter == nullptr) return PaperDatasets();
  std::string s(filter);
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    for (const auto& spec : PaperDatasets()) {
      if (spec.abbrev == item) result.push_back(spec);
    }
  }
  return result;
}

LoadedDataset LoadDataset(const DatasetSpec& spec) {
  LoadedDataset d;
  d.spec = spec;
  d.graph = MakeDataset(spec, EnvScale());
  d.pairs = SampleQueryPairs(d.graph, EnvPairs(), /*seed=*/20210402);
  return d;
}

TablePrinter::TablePrinter(std::string title,
                           std::vector<std::string> columns,
                           std::vector<int> widths)
    : columns_(std::move(columns)), widths_(std::move(widths)) {
  std::printf("\n== %s ==\n", title.c_str());
  for (size_t i = 0; i < columns_.size(); ++i) {
    std::printf("%-*s ", widths_[i], columns_[i].c_str());
  }
  std::printf("\n");
  int total = 0;
  for (int w : widths_) total += w + 1;
  for (int i = 0; i < total; ++i) std::printf("-");
  std::printf("\n");
}

void TablePrinter::Row(const std::vector<std::string>& cells) {
  for (size_t i = 0; i < cells.size() && i < widths_.size(); ++i) {
    std::printf("%-*s ", widths_[i], cells[i].c_str());
  }
  std::printf("\n");
  std::printf("csv");
  for (const auto& c : cells) std::printf(",%s", c.c_str());
  std::printf("\n");
  std::fflush(stdout);
}

void TablePrinter::Footer() const { std::printf("\n"); }

std::string HumanBytes(uint64_t bytes) {
  char buf[64];
  if (bytes >= (1ull << 30)) {
    std::snprintf(buf, sizeof(buf), "%.2fGB",
                  static_cast<double>(bytes) / (1ull << 30));
  } else if (bytes >= (1ull << 20)) {
    std::snprintf(buf, sizeof(buf), "%.2fMB",
                  static_cast<double>(bytes) / (1ull << 20));
  } else if (bytes >= (1ull << 10)) {
    std::snprintf(buf, sizeof(buf), "%.2fKB",
                  static_cast<double>(bytes) / (1ull << 10));
  } else {
    std::snprintf(buf, sizeof(buf), "%lluB",
                  static_cast<unsigned long long>(bytes));
  }
  return buf;
}

std::string FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string FormatMs(double ms) {
  return FormatDouble(ms, ms < 1.0 ? 4 : (ms < 100.0 ? 2 : 1));
}

std::string FormatSeconds(double seconds) {
  return FormatDouble(seconds, seconds < 1.0 ? 3 : 2);
}

}  // namespace qbs::bench

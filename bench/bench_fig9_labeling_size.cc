// Regenerates Figure 9: labelling sizes of QbS under 20-100 landmarks per
// dataset — size(L) grows linearly with |R|; size(Δ) grows sub-
// quadratically; the meta-graph stays tiny.

#include <cstdio>

#include "bench/bench_common.h"
#include "core/qbs_index.h"

namespace qbs::bench {
namespace {

void Run() {
  std::printf("Figure 9: QbS labelling sizes under 20-100 landmarks\n");
  TablePrinter table(
      "Figure 9",
      {"Dataset", "|R|", "size(L)", "size(Delta)", "meta", "total"},
      {12, 5, 10, 12, 9, 10});
  for (const auto& ref : SelectedBenchDatasets()) {
    const LoadedDataset d = LoadDataset(ref);
    for (uint32_t k : {20u, 40u, 60u, 80u, 100u}) {
      QbsOptions options;
      options.num_landmarks = k;
      options.num_threads = EnvThreads();
      options.precompute_delta = true;
      QbsIndex index = QbsIndex::Build(d.graph, options);
      table.Row({d.spec.abbrev, std::to_string(k),
                 HumanBytes(index.LabelingSizeBytes()),
                 HumanBytes(index.DeltaSizeBytes()),
                 HumanBytes(index.MetaGraphSizeBytes()),
                 HumanBytes(index.LabelingSizeBytes() +
                            index.DeltaSizeBytes() +
                            index.MetaGraphSizeBytes())});
    }
  }
  table.Footer();
}

}  // namespace
}  // namespace qbs::bench

int main(int argc, char** argv) {
  qbs::bench::InitBenchArgs(argc, argv);
  qbs::bench::Run();
}

// Dynamic-update benchmark: incremental maintenance throughput
// (QbsIndex::ApplyUpdates) and query latency under churn. For each
// dataset, three edit workloads — pure inserts, pure deletes, and a mixed
// stream — are applied in batches to an updatable index; the table
// reports the mean apply time per batch and the mean query time over the
// standard pair sample immediately after the churn (the repaired index
// answers, not a rebuilt one). CI feeds the CSV echo through
// scripts/bench_compare.py to catch apply/query-time regressions.

#include <cstdio>
#include <random>
#include <vector>

#include "bench/bench_common.h"
#include "core/qbs_index.h"
#include "graph/graph_delta.h"
#include "util/timer.h"

namespace qbs::bench {
namespace {

constexpr size_t kBatches = 6;
constexpr size_t kEditsPerBatch = 12;

enum class Workload { kInsert, kDelete, kMixed };

const char* WorkloadName(Workload w) {
  switch (w) {
    case Workload::kInsert:
      return "insert";
    case Workload::kDelete:
      return "delete";
    default:
      return "mixed";
  }
}

// A batch of edits drawn for `w`: inserts are uniform non-edges, deletes
// uniform existing edges, mixed alternates.
GraphDelta DrawBatch(const Graph& g, Workload w, std::mt19937_64& rng) {
  const std::vector<Edge> edges = g.EdgeList();
  std::uniform_int_distribution<VertexId> vtx(0, g.NumVertices() - 1);
  GraphDelta delta;
  for (size_t i = 0; i < kEditsPerBatch; ++i) {
    const bool del = w == Workload::kDelete ||
                     (w == Workload::kMixed && i % 2 == 1);
    if (del && !edges.empty()) {
      const Edge& e = edges[rng() % edges.size()];
      delta.Delete(e.u, e.v);
    } else {
      VertexId u = vtx(rng);
      VertexId v = vtx(rng);
      for (int tries = 0; (u == v || g.HasEdge(u, v)) && tries < 32;
           ++tries) {
        u = vtx(rng);
        v = vtx(rng);
      }
      delta.Insert(u, v);
    }
  }
  return delta;
}

void Run() {
  std::printf("Update churn: ApplyUpdates batches of %zu edits, query "
              "latency after churn; %zu pairs\n",
              kEditsPerBatch, EnvPairs());
  TablePrinter table("Update churn",
                     {"Dataset", "workload", "edits", "apply(ms)",
                      "query(ms)"},
                     {12, 9, 6, 10, 10});
  for (const auto& ref : SelectedBenchDatasets()) {
    const LoadedDataset d = LoadDataset(ref);
    for (const Workload w :
         {Workload::kInsert, Workload::kDelete, Workload::kMixed}) {
      Graph g = d.graph;  // private mutable copy per workload
      QbsOptions options;
      options.num_threads = EnvThreads();
      QbsIndex index = QbsIndex::Build(g, options);
      index.EnableUpdates(&g, EnvThreads());

      std::mt19937_64 rng(0x51c5u ^ static_cast<uint64_t>(w));
      uint64_t applied = 0;
      double apply_ms = 0.0;
      for (size_t batch = 0; batch < kBatches; ++batch) {
        const GraphDelta delta = DrawBatch(g, w, rng);
        WallTimer timer;
        const UpdateStats stats = index.ApplyUpdates(delta);
        apply_ms += timer.ElapsedMillis();
        applied += stats.AppliedTotal();
      }

      WallTimer query_timer;
      QueryRequest request;
      for (const auto& [u, v] : d.pairs) {
        request.u = u;
        request.v = v;
        index.Query(request);
      }
      const double query_ms =
          query_timer.ElapsedMillis() / static_cast<double>(d.pairs.size());
      table.Row({d.spec.abbrev, WorkloadName(w), std::to_string(applied),
                 FormatMs(apply_ms / kBatches), FormatMs(query_ms)});
    }
  }
  table.Footer();
}

}  // namespace
}  // namespace qbs::bench

int main(int argc, char** argv) {
  qbs::bench::InitBenchArgs(argc, argv);
  qbs::bench::Run();
}

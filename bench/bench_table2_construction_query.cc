// Regenerates Table 2: construction time (QbS-P, QbS, PPL, ParentPPL) and
// average query time (QbS, PPL, ParentPPL, Bi-BFS) per dataset.
//
// PPL / ParentPPL run under a construction budget (QBS_BENCH_BUDGET,
// default 10 s — the paper's cutoff is 24 h); exceeding it prints DNF, and
// exceeding the entry cap prints OOE, reproducing the paper's failure
// annotations. --dataset=dblp,... swaps the synthetic stand-ins for real
// downloaded graphs (see bench_table1_datasets.cc). The expected *shape*:
// QbS-P fastest to build, QbS query times orders of magnitude below
// Bi-BFS, PPL/ParentPPL failing beyond the small datasets.

#include <algorithm>
#include <cstdio>
#include <utility>
#include <vector>

#include "baselines/bibfs.h"
#include "baselines/parent_ppl.h"
#include "baselines/ppl.h"
#include "bench/bench_common.h"
#include "core/qbs_index.h"
#include "util/timer.h"

namespace qbs::bench {
namespace {

constexpr uint64_t kMaxLabelEntries = 80'000'000;  // ~entry cap => OOE

std::string StatusString(BuildStatus status) {
  return status == BuildStatus::kTimeBudgetExceeded ? "DNF" : "OOE";
}

void Run() {
  std::printf("Table 2: construction time (s) and average query time (ms); "
              "%zu pairs, budget %.1fs, %zu threads, batch_size %zu, "
              "grain %zu\n",
              EnvPairs(), EnvBudgetSeconds(), EnvThreads(), EnvBatchSize(),
              EnvGrain());
  TablePrinter table(
      "Table 2",
      {"Dataset", "QbS-P(s)", "QbS(s)", "PPL(s)", "PPPL(s)", "qQbS(ms)",
       "qNoBP(ms)", "q2bp(ms)", "q2no(ms)", "hit2(%)", "qBatch(ms)",
       "qPPL(ms)", "qPPPL(ms)", "qBiBFS(ms)"},
      {12, 9, 9, 9, 9, 10, 10, 10, 10, 8, 10, 10, 10, 10});

  for (const auto& ref : SelectedBenchDatasets()) {
    const LoadedDataset d = LoadDataset(ref);
    const Graph& g = d.graph;

    // QbS-P (parallel labelling construction).
    QbsOptions par_options;
    par_options.num_landmarks = 20;
    par_options.num_threads = EnvThreads();
    QbsIndex qbsp = QbsIndex::Build(g, par_options);
    const double qbsp_seconds = qbsp.timings().labeling_seconds;

    // QbS (sequential).
    QbsOptions seq_options;
    seq_options.num_landmarks = 20;
    seq_options.num_threads = 1;
    QbsIndex qbs = QbsIndex::Build(g, seq_options);
    const double qbs_seconds = qbs.timings().labeling_seconds;

    // Ablation twin: the same index without bit-parallel masks, so the
    // table reports the label fast path's query effect side by side.
    QbsOptions nobp_options = seq_options;
    nobp_options.bit_parallel = false;
    QbsIndex qbs_nobp = QbsIndex::Build(g, nobp_options);

    // PPL / ParentPPL under budget.
    PplBuildOptions budget;
    budget.time_budget_seconds = EnvBudgetSeconds();
    budget.max_label_entries = kMaxLabelEntries;
    WallTimer timer;
    BuildStatus ppl_status;
    auto ppl = PplIndex::Build(g, budget, &ppl_status);
    const double ppl_seconds = timer.ElapsedSeconds();
    timer.Reset();
    BuildStatus pppl_status;
    auto pppl = ParentPplIndex::Build(g, budget, &pppl_status);
    const double pppl_seconds = timer.ElapsedSeconds();

    // Query timings. Each index gets an untimed warmup pass over a pair
    // prefix first, so neither measurement charges cold caches to its
    // configuration. Besides the overall average, each loop splits out the
    // d <= 2 class (classified by the returned distance, identical in both
    // configurations) — the pairs the bit-parallel fast path targets;
    // random pairs on a small-world graph are dominated by d >= 3, so the
    // class column is where the label-only answering shows. The masks-on
    // pass also counts label short circuits.
    const size_t warmup = std::min<size_t>(d.pairs.size(), 128);
    struct SplitTiming {
      double total_ms = 0.0;
      double close_ms = 0.0;
      size_t close = 0;
    };
    const auto timed_pass = [&](QbsIndex& index, SearchStats* agg) {
      for (size_t i = 0; i < warmup; ++i) {
        index.Query(d.pairs[i].u, d.pairs[i].v);
      }
      SplitTiming t;
      for (const auto& [u, v] : d.pairs) {
        SearchStats stats;
        WallTimer qt;
        const auto spg = index.Query(u, v, &stats);
        const double ms = qt.ElapsedMillis();
        t.total_ms += ms;
        if (spg.distance <= 2) {
          t.close_ms += ms;
          ++t.close;
        }
        if (agg != nullptr) agg->Accumulate(stats);
      }
      return t;
    };
    SearchStats agg;
    const SplitTiming bp = timed_pass(qbs, &agg);
    const SplitTiming nobp = timed_pass(qbs_nobp, nullptr);
    const double q_qbs = bp.total_ms / d.pairs.size();
    const double q_nobp = nobp.total_ms / d.pairs.size();
    const std::string q2_bp =
        bp.close > 0 ? FormatMs(bp.close_ms / bp.close) : "-";
    const std::string q2_nobp =
        nobp.close > 0 ? FormatMs(nobp.close_ms / nobp.close) : "-";
    const double hit2 =
        100.0 * static_cast<double>(agg.label_short_circuits) /
        static_cast<double>(d.pairs.size());

    // Parallel batch path: QueryBatch in batch_size chunks on the QbS-P
    // index (per-thread searcher pool + work-stealing ParallelFor).
    std::vector<QueryRequest> batch_requests;
    batch_requests.reserve(d.pairs.size());
    for (const auto& [u, v] : d.pairs) batch_requests.emplace_back(u, v);
    QbsIndex::BatchOptions batch_options;
    batch_options.num_threads = EnvThreads();
    batch_options.grain = EnvGrain();
    const size_t batch_size = EnvBatchSize();
    WallTimer qtimer;
    for (size_t off = 0; off < batch_requests.size(); off += batch_size) {
      const size_t end = std::min(off + batch_size, batch_requests.size());
      const std::vector<QueryRequest> chunk(batch_requests.begin() + off,
                                            batch_requests.begin() + end);
      qbsp.QueryBatch(chunk, batch_options);
    }
    const double q_batch = qtimer.ElapsedMillis() / d.pairs.size();

    std::string q_ppl = "-";
    if (ppl.has_value()) {
      qtimer.Reset();
      for (const auto& [u, v] : d.pairs) ppl->QuerySpg(u, v);
      q_ppl = FormatMs(qtimer.ElapsedMillis() / d.pairs.size());
    }
    std::string q_pppl = "-";
    if (pppl.has_value()) {
      qtimer.Reset();
      for (const auto& [u, v] : d.pairs) pppl->QuerySpg(u, v);
      q_pppl = FormatMs(qtimer.ElapsedMillis() / d.pairs.size());
    }

    BiBfs bibfs(g);
    qtimer.Reset();
    for (const auto& [u, v] : d.pairs) bibfs.Query(u, v);
    const double q_bibfs = qtimer.ElapsedMillis() / d.pairs.size();

    table.Row({d.spec.abbrev, FormatSeconds(qbsp_seconds),
               FormatSeconds(qbs_seconds),
               ppl.has_value() ? FormatSeconds(ppl_seconds)
                               : StatusString(ppl_status),
               pppl.has_value() ? FormatSeconds(pppl_seconds)
                                : StatusString(pppl_status),
               FormatMs(q_qbs), FormatMs(q_nobp), q2_bp, q2_nobp,
               FormatDouble(hit2, 1), FormatMs(q_batch), q_ppl, q_pppl,
               FormatMs(q_bibfs)});
  }
  table.Footer();
}

}  // namespace
}  // namespace qbs::bench

int main(int argc, char** argv) {
  qbs::bench::InitBenchArgs(argc, argv);
  qbs::bench::Run();
}

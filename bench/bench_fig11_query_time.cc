// Regenerates Figure 11: average query time against the number of
// landmarks (5-100). The paper's observation: more landmarks help hub-
// dominated graphs (more sparsification) but can hurt evenly-distributed
// ones (sketch cost grows with |R|^2).

#include <cstdio>

#include "bench/bench_common.h"
#include "core/qbs_index.h"
#include "util/timer.h"

namespace qbs::bench {
namespace {

void Run() {
  std::printf("Figure 11: QbS average query time (ms) vs number of "
              "landmarks; %zu pairs\n",
              EnvPairs());
  TablePrinter table("Figure 11", {"Dataset", "|R|", "query(ms)"},
                     {12, 5, 10});
  for (const auto& ref : SelectedBenchDatasets()) {
    const LoadedDataset d = LoadDataset(ref);
    for (uint32_t k : {5u, 10u, 15u, 20u, 40u, 60u, 80u, 100u}) {
      QbsOptions options;
      options.num_landmarks = k;
      options.num_threads = EnvThreads();
      QbsIndex index = QbsIndex::Build(d.graph, options);
      QueryRequest request;
      WallTimer timer;
      for (const auto& [u, v] : d.pairs) {
        request.u = u;
        request.v = v;
        index.Query(request);
      }
      table.Row({d.spec.abbrev, std::to_string(k),
                 FormatMs(timer.ElapsedMillis() / d.pairs.size())});
    }
  }
  table.Footer();
}

}  // namespace
}  // namespace qbs::bench

int main(int argc, char** argv) {
  qbs::bench::InitBenchArgs(argc, argv);
  qbs::bench::Run();
}

// Regenerates Figure 10: QbS construction time against the number of
// landmarks (0-100). The paper's observation: construction time is almost
// linear in |R| on each dataset (one BFS per landmark).

#include <cstdio>

#include "bench/bench_common.h"
#include "core/qbs_index.h"

namespace qbs::bench {
namespace {

void Run() {
  std::printf("Figure 10: QbS construction time (s) vs number of "
              "landmarks\n");
  TablePrinter table("Figure 10",
                     {"Dataset", "|R|", "QbS(s)", "QbS-P(s)"},
                     {12, 5, 10, 10});
  for (const auto& ref : SelectedBenchDatasets()) {
    const LoadedDataset d = LoadDataset(ref);
    for (uint32_t k : {5u, 10u, 15u, 20u, 40u, 60u, 80u, 100u}) {
      QbsOptions seq;
      seq.num_landmarks = k;
      seq.num_threads = 1;
      QbsIndex a = QbsIndex::Build(d.graph, seq);
      QbsOptions par = seq;
      par.num_threads = EnvThreads();
      QbsIndex b = QbsIndex::Build(d.graph, par);
      table.Row({d.spec.abbrev, std::to_string(k),
                 FormatSeconds(a.timings().labeling_seconds),
                 FormatSeconds(b.timings().labeling_seconds)});
    }
  }
  table.Footer();
}

}  // namespace
}  // namespace qbs::bench

int main(int argc, char** argv) {
  qbs::bench::InitBenchArgs(argc, argv);
  qbs::bench::Run();
}

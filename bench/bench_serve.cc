// Serving-layer benchmark: stands up the `qbs serve` daemon in-process on
// a loopback socket, drives it with the seeded Zipfian workload generator
// (hot-pair skew + concurrent connections), and reports end-to-end client
// latency percentiles, throughput, and hot-pair cache hit-rate per
// dataset. The CSV echo is gated by scripts/bench_compare.py like every
// other bench (the "(ms)" columns), so serving-path latency regressions
// fail CI the same way index-path regressions do.
//
// Knobs (on top of the bench_common set): the workload is 8x the pair
// budget in queries over a universe of EnvPairs() distinct pairs with
// Zipf s = 0.99, driven over min(EnvThreads(), 8) connections, seed 42 —
// all fixed so reruns are comparable.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "core/qbs_index.h"
#include "server/client.h"
#include "server/latency_histogram.h"
#include "server/server.h"
#include "util/timer.h"
#include "workload/synthetic_workload.h"

namespace qbs::bench {
namespace {

void Run() {
  const size_t conns = std::min<size_t>(std::max<size_t>(EnvThreads(), 1), 8);
  std::printf("qbs serve under seeded Zipfian load (%zu conns)\n", conns);
  TablePrinter table(
      "Serve (loopback, Zipf s=0.99)",
      {"Dataset", "queries", "thrpt(q/s)", "p50(ms)", "p99(ms)", "p999(ms)",
       "c.p99(ms)", "l.p99(ms)", "hit(%)", "busy"},
      {12, 8, 11, 9, 9, 9, 10, 10, 7, 6});

  for (const auto& ref : SelectedBenchDatasets()) {
    const LoadedDataset d = LoadDataset(ref);

    QbsOptions build_options;
    build_options.num_landmarks = 20;
    build_options.num_threads = EnvThreads();
    QbsIndex index = QbsIndex::Build(d.graph, build_options);

    server::ServerOptions server_options;
    server_options.port = 0;  // ephemeral
    server_options.max_inflight = EnvThreads();
    server::QueryServer server(index, server_options);
    std::string error;
    if (!server.Start(&error)) {
      std::fprintf(stderr, "bench_serve: %s\n", error.c_str());
      continue;
    }

    WorkloadOptions workload;
    workload.num_queries = EnvPairs() * 8;
    workload.num_distinct_pairs = EnvPairs();
    workload.zipf_s = 0.99;
    workload.seed = 42;
    const std::vector<TimedQuery> queries =
        GenerateWorkload(d.graph, workload);

    std::atomic<size_t> cursor{0};
    std::atomic<uint64_t> ok{0};
    std::atomic<uint64_t> busy{0};
    server::LatencyHistogram latency;

    WallTimer timer;
    std::vector<std::thread> workers;
    workers.reserve(conns);
    for (size_t c = 0; c < conns; ++c) {
      workers.emplace_back([&] {
        server::QueryClient client;
        if (!client.Connect("127.0.0.1", server.port())) return;
        for (;;) {
          const size_t i = cursor.fetch_add(1);
          if (i >= queries.size()) break;
          const auto t0 = std::chrono::steady_clock::now();
          QueryResponse response;
          for (;;) {
            const auto status = client.Query(queries[i].request, &response);
            if (status == server::QueryClient::RpcStatus::kBusy) {
              busy.fetch_add(1);
              std::this_thread::sleep_for(std::chrono::microseconds(200));
              continue;
            }
            if (status == server::QueryClient::RpcStatus::kOk) {
              ok.fetch_add(1);
            } else {
              return;  // transport gone; stop this worker
            }
            break;
          }
          latency.Record(static_cast<uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - t0)
                  .count()));
        }
      });
    }
    for (auto& w : workers) w.join();
    const double elapsed = timer.ElapsedSeconds();
    server.Stop();

    const auto stats = server.GetStats();
    const auto snap = latency.GetSnapshot();
    table.Row(
        {d.spec.abbrev, std::to_string(ok.load()),
         FormatDouble(elapsed > 0
                          ? static_cast<double>(ok.load()) / elapsed
                          : 0.0,
                      0),
         FormatMs(snap.QuantileMillis(0.50)),
         FormatMs(snap.QuantileMillis(0.99)),
         FormatMs(snap.QuantileMillis(0.999)),
         stats.lat_cached.count > 0
             ? FormatMs(stats.lat_cached.QuantileMillis(0.99))
             : "-",
         stats.lat_long.count > 0
             ? FormatMs(stats.lat_long.QuantileMillis(0.99))
             : "-",
         FormatDouble(100.0 * stats.cache.HitRate(), 1),
         std::to_string(busy.load())});
  }
  table.Footer();
}

}  // namespace
}  // namespace qbs::bench

int main(int argc, char** argv) {
  qbs::bench::InitBenchArgs(argc, argv);
  qbs::bench::Run();
}

// Regenerates Figure 8: pair coverage ratios under 20-100 landmarks.
// For each dataset and |R|, the fraction of query pairs where (i) ALL
// shortest paths pass through a landmark, and (ii) SOME but not all do —
// read directly off the guided search's Eq. 5 case (SearchStats::coverage).

#include <cstdio>

#include "bench/bench_common.h"
#include "core/qbs_index.h"

namespace qbs::bench {
namespace {

void Run() {
  std::printf("Figure 8: pair coverage ratio (case i: all shortest paths "
              "via landmarks; case ii: some), %zu pairs\n",
              EnvPairs());
  TablePrinter table("Figure 8",
                     {"Dataset", "|R|", "all(i)", "some(ii)", "total"},
                     {12, 5, 8, 9, 8});
  for (const auto& ref : SelectedBenchDatasets()) {
    const LoadedDataset d = LoadDataset(ref);
    for (uint32_t k : {20u, 40u, 60u, 80u, 100u}) {
      QbsOptions options;
      options.num_landmarks = k;
      options.num_threads = EnvThreads();
      QbsIndex index = QbsIndex::Build(d.graph, options);
      uint64_t all = 0;
      uint64_t some = 0;
      uint64_t connected = 0;
      QueryRequest request;
      for (const auto& [u, v] : d.pairs) {
        request.u = u;
        request.v = v;
        const QueryResponse response = index.Query(request);
        switch (response.stats.coverage) {
          case PairCoverage::kAllThroughLandmarks:
            ++all;
            ++connected;
            break;
          case PairCoverage::kSomeThroughLandmarks:
            ++some;
            ++connected;
            break;
          case PairCoverage::kNoneThroughLandmarks:
            ++connected;
            break;
          case PairCoverage::kDisconnected:
            break;
        }
      }
      const double denom = connected == 0 ? 1.0 : connected;
      table.Row({d.spec.abbrev, std::to_string(k),
                 FormatDouble(all / denom, 3), FormatDouble(some / denom, 3),
                 FormatDouble((all + some) / denom, 3)});
    }
  }
  table.Footer();
}

}  // namespace
}  // namespace qbs::bench

int main(int argc, char** argv) {
  qbs::bench::InitBenchArgs(argc, argv);
  qbs::bench::Run();
}

// Regenerates the §6.5 efficiency-source analysis, which the paper reports
// in prose for Twitter: (1) sparsification reduces edges traversed, (2)
// sketch guidance reduces them further versus plain Bi-BFS, (3) the Δ
// precomputation removes landmark-landmark recovery work. Also ablates the
// landmark selection strategy (degree vs. random, the §8 future-work hook).

#include <cstdio>

#include "baselines/bibfs.h"
#include "bench/bench_common.h"
#include "core/qbs_index.h"
#include "util/timer.h"

namespace qbs::bench {
namespace {

void Run() {
  std::printf("Ablation (Section 6.5): edges traversed and design-choice "
              "effects, |R| = 20, %zu pairs\n",
              EnvPairs());
  TablePrinter table("Ablation",
                     {"Dataset", "scan.BiBFS", "scan.QbS", "ratio",
                      "skipped", "q.noDelta", "q.Delta", "q.randomLm"},
                     {12, 11, 11, 7, 11, 10, 10, 11});

  for (const auto& spec : SelectedDatasets()) {
    const LoadedDataset d = LoadDataset(spec);
    const Graph& g = d.graph;

    QbsOptions options;
    options.num_landmarks = 20;
    options.num_threads = EnvThreads();
    QbsIndex qbs = QbsIndex::Build(g, options);

    QbsOptions delta_options = options;
    delta_options.precompute_delta = true;
    QbsIndex qbs_delta = QbsIndex::Build(g, delta_options);

    QbsOptions random_options = options;
    random_options.landmark_strategy = LandmarkStrategy::kRandom;
    QbsIndex qbs_random = QbsIndex::Build(g, random_options);

    BiBfs bibfs(g);

    uint64_t bibfs_scans = 0;
    for (const auto& [u, v] : d.pairs) {
      uint64_t scans = 0;
      bibfs.Query(u, v, &scans);
      bibfs_scans += scans;
    }

    uint64_t qbs_scans = 0;
    uint64_t skipped = 0;
    WallTimer timer;
    for (const auto& [u, v] : d.pairs) {
      SearchStats stats;
      qbs.Query(u, v, &stats);
      qbs_scans += stats.TotalEdgesScanned();
      skipped += stats.landmark_edges_skipped;
    }
    const double q_nodelta = timer.ElapsedMillis() / d.pairs.size();

    timer.Reset();
    for (const auto& [u, v] : d.pairs) qbs_delta.Query(u, v);
    const double q_delta = timer.ElapsedMillis() / d.pairs.size();

    timer.Reset();
    for (const auto& [u, v] : d.pairs) qbs_random.Query(u, v);
    const double q_random = timer.ElapsedMillis() / d.pairs.size();

    const double avg_bibfs =
        static_cast<double>(bibfs_scans) / d.pairs.size();
    const double avg_qbs = static_cast<double>(qbs_scans) / d.pairs.size();
    table.Row({spec.abbrev, FormatDouble(avg_bibfs, 0),
               FormatDouble(avg_qbs, 0),
               FormatDouble(avg_qbs / std::max(1.0, avg_bibfs), 3),
               FormatDouble(static_cast<double>(skipped) / d.pairs.size(), 0),
               FormatMs(q_nodelta), FormatMs(q_delta), FormatMs(q_random)});
  }
  table.Footer();
}

}  // namespace
}  // namespace qbs::bench

int main() { qbs::bench::Run(); }

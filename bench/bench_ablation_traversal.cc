// Regenerates the §6.5 efficiency-source analysis, which the paper reports
// in prose for Twitter: (1) sparsification reduces edges traversed, (2)
// sketch guidance reduces them further versus plain Bi-BFS, (3) the Δ
// precomputation removes landmark-landmark recovery work. Also ablates the
// landmark selection strategy (degree vs. random, the §8 future-work hook)
// and the frontier engine's direction switching (top-down vs
// direction-optimizing full-graph BFS — the construction-time kernel).

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <vector>

#include "baselines/bibfs.h"
#include "bench/bench_common.h"
#include "core/label_scan.h"
#include "core/qbs_index.h"
#include "graph/frontier.h"
#include "util/timer.h"

namespace qbs::bench {
namespace {

void Run() {
  std::printf("Ablation (Section 6.5): edges traversed and design-choice "
              "effects, |R| = 20, %zu pairs\n",
              EnvPairs());
  TablePrinter table("Ablation",
                     {"Dataset", "scan.BiBFS", "scan.QbS", "ratio",
                      "skipped", "q.noDelta", "q.Delta", "q.randomLm"},
                     {12, 11, 11, 7, 11, 10, 10, 11});

  for (const auto& ref : SelectedBenchDatasets()) {
    const LoadedDataset d = LoadDataset(ref);
    const Graph& g = d.graph;

    QbsOptions options;
    options.num_landmarks = 20;
    options.num_threads = EnvThreads();
    QbsIndex qbs = QbsIndex::Build(g, options);

    QbsOptions delta_options = options;
    delta_options.precompute_delta = true;
    QbsIndex qbs_delta = QbsIndex::Build(g, delta_options);

    QbsOptions random_options = options;
    random_options.landmark_strategy = LandmarkStrategy::kRandom;
    QbsIndex qbs_random = QbsIndex::Build(g, random_options);

    BiBfs bibfs(g);

    uint64_t bibfs_scans = 0;
    for (const auto& [u, v] : d.pairs) {
      uint64_t scans = 0;
      bibfs.Query(u, v, &scans);
      bibfs_scans += scans;
    }

    uint64_t qbs_scans = 0;
    uint64_t skipped = 0;
    WallTimer timer;
    for (const auto& [u, v] : d.pairs) {
      SearchStats stats;
      qbs.Query(u, v, &stats);
      qbs_scans += stats.TotalEdgesScanned();
      skipped += stats.landmark_edges_skipped;
    }
    const double q_nodelta = timer.ElapsedMillis() / d.pairs.size();

    timer.Reset();
    for (const auto& [u, v] : d.pairs) qbs_delta.Query(u, v);
    const double q_delta = timer.ElapsedMillis() / d.pairs.size();

    timer.Reset();
    for (const auto& [u, v] : d.pairs) qbs_random.Query(u, v);
    const double q_random = timer.ElapsedMillis() / d.pairs.size();

    const double avg_bibfs =
        static_cast<double>(bibfs_scans) / d.pairs.size();
    const double avg_qbs = static_cast<double>(qbs_scans) / d.pairs.size();
    table.Row({d.spec.abbrev, FormatDouble(avg_bibfs, 0),
               FormatDouble(avg_qbs, 0),
               FormatDouble(avg_qbs / std::max(1.0, avg_bibfs), 3),
               FormatDouble(static_cast<double>(skipped) / d.pairs.size(), 0),
               FormatMs(q_nodelta), FormatMs(q_delta), FormatMs(q_random)});
  }
  table.Footer();
}

// Bit-parallel mask ablation: the same index built with the fused mask
// construction (S^{-1} propagated inside the labelling BFS), with the
// two-sweep replay reference, and without masks entirely. Reports the
// fused-vs-replay construction times (both "(s)" columns, so the CI
// bench_compare gate watches them), per-query latency with and without
// masks, the label fast-path hit rate, the frontier vertices the
// mask-guided lower bound pruned per query, and the mask matrix size —
// the full price/benefit picture of the feature.
void RunBitParallelAblation() {
  std::printf("Bit-parallel label masks: fused vs replay vs off, |R| = 20, "
              "%zu pairs\n",
              EnvPairs());
  TablePrinter table("Bit-parallel ablation",
                     {"Dataset", "b.fused(s)", "b.replay(s)", "b.nobp(s)",
                      "f.spd", "q.bp(ms)", "q.nobp(ms)", "spdup", "hit2(%)",
                      "prune/q", "size.BP"},
                     {12, 11, 12, 10, 7, 10, 11, 7, 8, 9, 10});
  for (const auto& ref : SelectedBenchDatasets()) {
    const LoadedDataset d = LoadDataset(ref);
    const Graph& g = d.graph;

    QbsOptions on;
    on.num_landmarks = 20;
    on.num_threads = EnvThreads();
    QbsOptions replay = on;
    replay.bp_fused = false;
    QbsOptions off = on;
    off.bit_parallel = false;
    QbsIndex qbs_on = QbsIndex::Build(g, on);
    QbsIndex qbs_replay = QbsIndex::Build(g, replay);
    QbsIndex qbs_off = QbsIndex::Build(g, off);

    // Untimed warmup per index so neither configuration is charged for
    // cold caches.
    const size_t warmup = std::min<size_t>(d.pairs.size(), 128);
    for (size_t i = 0; i < warmup; ++i) {
      qbs_on.Query(d.pairs[i].u, d.pairs[i].v);
    }
    SearchStats agg;
    WallTimer timer;
    for (const auto& [u, v] : d.pairs) {
      SearchStats stats;
      qbs_on.Query(u, v, &stats);
      agg.Accumulate(stats);
    }
    const double q_on = timer.ElapsedMillis() / d.pairs.size();

    for (size_t i = 0; i < warmup; ++i) {
      qbs_off.Query(d.pairs[i].u, d.pairs[i].v);
    }
    timer.Reset();
    for (const auto& [u, v] : d.pairs) {
      SearchStats stats;
      qbs_off.Query(u, v, &stats);
    }
    const double q_off = timer.ElapsedMillis() / d.pairs.size();

    const double hit2 =
        100.0 * static_cast<double>(agg.label_short_circuits) /
        static_cast<double>(d.pairs.size());
    const double b_fused = qbs_on.timings().labeling_seconds;
    const double b_replay = qbs_replay.timings().labeling_seconds;
    table.Row({d.spec.abbrev, FormatSeconds(b_fused), FormatSeconds(b_replay),
               FormatSeconds(qbs_off.timings().labeling_seconds),
               FormatDouble(b_fused > 0 ? b_replay / b_fused : 0.0, 2),
               FormatMs(q_on), FormatMs(q_off),
               FormatDouble(q_on > 0 ? q_off / q_on : 0.0, 2),
               FormatDouble(hit2, 1),
               FormatDouble(static_cast<double>(agg.lb_prunes) /
                                static_cast<double>(d.pairs.size()),
                            1),
               HumanBytes(qbs_on.BpMaskSizeBytes())});
  }
  table.Footer();
}

// Label-scan kernel ablation: the per-query fused row merge (the dense
// O(|R|) inner loop of ComputeLabelBound) timed per kernel — scalar
// reference, the SIMD kernel the dispatcher picked for this CPU, and the
// batched kScanBatch-pair interleaved sweep. Reports ms per bound (all
// three "(ms)" columns ride the CI bench_compare gate), ns per row
// scanned, and batched bound throughput. The checksums double as a free
// differential check: the kernels are bit-identical by contract, so any
// mismatch is printed loudly.
void RunLabelScanKernelAblation() {
  std::printf("Label-scan kernels: scalar vs %s vs batched row sweep, "
              "|R| = 20, %zu pairs\n",
              ScanOpsFor(ScanKernel::kAvx2).name, EnvPairs());
  TablePrinter table("Label-scan kernels",
                     {"Dataset", "scal(ms)", "simd(ms)", "batch(ms)",
                      "spdup", "b.spdup", "ns/r.s", "ns/r.v", "ns/r.b",
                      "kq/s.b"},
                     {12, 10, 10, 10, 7, 8, 8, 8, 8, 9});
  for (const auto& ref : SelectedBenchDatasets()) {
    const LoadedDataset d = LoadDataset(ref);
    const Graph& g = d.graph;

    QbsOptions options;
    options.num_landmarks = 20;
    options.num_threads = EnvThreads();
    QbsIndex index = QbsIndex::Build(g, options);
    const PathLabeling& l = index.labeling();

    // The row kernels serve non-landmark pairs; landmark endpoints take
    // the scalar special cases and are excluded here.
    std::vector<VertexId> us;
    std::vector<VertexId> vs;
    for (const auto& [u, v] : d.pairs) {
      if (u == v || l.IsLandmark(u) || l.IsLandmark(v)) continue;
      us.push_back(u);
      vs.push_back(v);
    }
    if (us.empty()) continue;
    // Repeat small pair sets so every cell aggregates >= ~200k bounds.
    const size_t reps = std::max<size_t>(1, 200000 / us.size());
    const double calls = static_cast<double>(reps * us.size());
    const double rows = calls * 2.0;

    const ScanOps& scalar_ops = ScalarScanOps();
    const ScanOps& simd_ops = ScanOpsFor(ScanKernel::kAvx2);
    std::vector<LabelBound> batch(us.size());

    uint64_t sink[3] = {0, 0, 0};
    WallTimer timer;
    for (size_t r = 0; r < reps; ++r) {
      for (size_t i = 0; i < us.size(); ++i) {
        const LabelBound b =
            ComputeLabelBoundRows(l, us[i], vs[i], kUnreachable, scalar_ops);
        sink[0] += b.lower + b.upper;
      }
    }
    const double ms_scalar = timer.ElapsedMillis();

    timer.Reset();
    for (size_t r = 0; r < reps; ++r) {
      for (size_t i = 0; i < us.size(); ++i) {
        const LabelBound b =
            ComputeLabelBoundRows(l, us[i], vs[i], kUnreachable, simd_ops);
        sink[1] += b.lower + b.upper;
      }
    }
    const double ms_simd = timer.ElapsedMillis();

    timer.Reset();
    for (size_t r = 0; r < reps; ++r) {
      ComputeLabelBoundRowsBatch(l, us.data(), vs.data(), us.size(),
                                 kUnreachable, batch.data(), simd_ops);
      for (const LabelBound& b : batch) sink[2] += b.lower + b.upper;
    }
    const double ms_batch = timer.ElapsedMillis();

    if (sink[0] != sink[1] || sink[0] != sink[2]) {
      std::printf("  WARNING: kernel checksum mismatch on %s "
                  "(scalar %llu, simd %llu, batch %llu)\n",
                  d.spec.abbrev.c_str(),
                  static_cast<unsigned long long>(sink[0]),
                  static_cast<unsigned long long>(sink[1]),
                  static_cast<unsigned long long>(sink[2]));
    }
    table.Row({d.spec.abbrev, FormatMs(ms_scalar / calls),
               FormatMs(ms_simd / calls), FormatMs(ms_batch / calls),
               FormatDouble(ms_simd > 0 ? ms_scalar / ms_simd : 0.0, 2),
               FormatDouble(ms_batch > 0 ? ms_scalar / ms_batch : 0.0, 2),
               FormatDouble(ms_scalar * 1e6 / rows, 1),
               FormatDouble(ms_simd * 1e6 / rows, 1),
               FormatDouble(ms_batch * 1e6 / rows, 1),
               FormatDouble(ms_batch > 0 ? calls / ms_batch : 0.0, 0)});
  }
  table.Footer();
}

// Direction-switching ablation: a full-graph BFS from the 5 highest-degree
// vertices, top-down versus direction-optimizing, with the engine's scan
// counters. This is the per-landmark kernel of Algorithm 2 construction.
void RunFrontierAblation() {
  std::printf("Frontier engine: top-down vs direction-optimizing "
              "full-graph BFS (5 hub sources)\n");
  TablePrinter table("Frontier ablation",
                     {"Dataset", "td(ms)", "auto(ms)", "speedup",
                      "scan.td", "scan.auto", "bu.levels"},
                     {12, 9, 9, 8, 12, 12, 9});
  for (const auto& ref : SelectedBenchDatasets()) {
    const LoadedDataset d = LoadDataset(ref);
    const Graph& g = d.graph;
    std::vector<VertexId> sources(g.NumVertices());
    std::iota(sources.begin(), sources.end(), 0);
    const size_t top = std::min<size_t>(5, sources.size());
    std::partial_sort(
        sources.begin(), sources.begin() + top, sources.end(),
        [&g](VertexId a, VertexId b) { return g.Degree(a) > g.Degree(b); });
    sources.resize(top);

    FrontierEngine engine;
    std::vector<uint32_t> dist;
    uint64_t scans[2] = {0, 0};
    uint32_t bu_levels = 0;
    double ms[2] = {0, 0};
    const TraversalMode modes[2] = {TraversalMode::kTopDown,
                                    TraversalMode::kAuto};
    for (int m = 0; m < 2; ++m) {
      WallTimer timer;
      for (VertexId s : sources) {
        engine.Distances(g, s, kUnreachable - 1, &dist, modes[m]);
        scans[m] += engine.stats().edges_scanned;
        if (m == 1) bu_levels += engine.stats().bottom_up_levels;
      }
      ms[m] = timer.ElapsedMillis();
    }
    table.Row({d.spec.abbrev, FormatMs(ms[0]), FormatMs(ms[1]),
               FormatDouble(ms[1] > 0 ? ms[0] / ms[1] : 0.0, 2),
               std::to_string(scans[0]), std::to_string(scans[1]),
               std::to_string(bu_levels)});
  }
  table.Footer();
}

}  // namespace
}  // namespace qbs::bench

int main(int argc, char** argv) {
  qbs::bench::InitBenchArgs(argc, argv);
  qbs::bench::Run();
  qbs::bench::RunBitParallelAblation();
  qbs::bench::RunLabelScanKernelAblation();
  qbs::bench::RunFrontierAblation();
}

// Shared harness for the per-table / per-figure benchmark binaries.
//
// Environment knobs (all optional):
//   QBS_BENCH_SCALE     dataset size multiplier (default 1.0)
//   QBS_BENCH_PAIRS     query pairs per dataset (default 500; paper: 10,000)
//   QBS_BENCH_BUDGET    PPL/ParentPPL construction budget in seconds
//                       (default 10; the paper's cutoff is 24 h => DNF)
//   QBS_BENCH_THREADS   threads for QbS-P (default min(12, hardware),
//                       mirroring the paper's 12-thread setup)
//   QBS_BENCH_DATASETS  comma-separated abbreviations to run (default all,
//                       e.g. "DO,DB,YT")

#ifndef QBS_BENCH_BENCH_COMMON_H_
#define QBS_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "workload/dataset_registry.h"
#include "workload/query_workload.h"

namespace qbs::bench {

double EnvScale();
size_t EnvPairs();
double EnvBudgetSeconds();
size_t EnvThreads();

// Registry datasets selected by QBS_BENCH_DATASETS (default: all 12).
std::vector<DatasetSpec> SelectedDatasets();

struct LoadedDataset {
  DatasetSpec spec;
  Graph graph;
  std::vector<QueryPair> pairs;
};

// Generates the dataset at the env scale and samples the env pair count.
LoadedDataset LoadDataset(const DatasetSpec& spec);

// Fixed-width aligned table output. Also echoes each row as CSV to make
// figure series machine-readable (prefix "csv,").
class TablePrinter {
 public:
  TablePrinter(std::string title, std::vector<std::string> columns,
               std::vector<int> widths);
  void Row(const std::vector<std::string>& cells);
  void Footer() const;

 private:
  std::vector<std::string> columns_;
  std::vector<int> widths_;
};

std::string HumanBytes(uint64_t bytes);
std::string FormatDouble(double value, int precision);
// Milliseconds with adaptive precision (microsecond regime keeps 3+
// decimals, like the paper's Table 2).
std::string FormatMs(double ms);
std::string FormatSeconds(double seconds);

}  // namespace qbs::bench

#endif  // QBS_BENCH_BENCH_COMMON_H_

// Shared harness for the per-table / per-figure benchmark binaries.
//
// Environment knobs (all optional):
//   QBS_BENCH_SCALE      dataset size multiplier (default 1.0)
//   QBS_BENCH_PAIRS      query pairs per dataset (default 500; paper: 10,000)
//   QBS_BENCH_BUDGET     PPL/ParentPPL construction budget in seconds
//                        (default 10; the paper's cutoff is 24 h => DNF)
//   QBS_BENCH_THREADS    threads for QbS-P / QueryBatch (default min(12,
//                        hardware), mirroring the paper's 12-thread setup)
//   QBS_BENCH_DATASETS   comma-separated abbreviations to run (default all,
//                        e.g. "DO,DB,YT")
//   QBS_BENCH_BATCH_SIZE queries per QueryBatch call (default 256)
//   QBS_BENCH_GRAIN      ParallelFor grain for QueryBatch (default 0 = auto)
//   QBS_BENCH_DATASET    comma-separated *real* dataset names (or Table 1
//                        abbreviations) to run against downloaded data,
//                        e.g. "dblp,epinions" (see workload/datasets.h);
//                        missing data falls back to the stand-in
//   QBS_DATA_DIR         data directory for real datasets (default "data")
//
// Command-line flags override the environment: pass argc/argv to
// InitBenchArgs and use --scale=, --pairs=, --budget=, --threads=,
// --datasets=, --batch_size=, --grain=, --dataset=, --data_dir=.

#ifndef QBS_BENCH_BENCH_COMMON_H_
#define QBS_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "workload/dataset_registry.h"
#include "workload/query_workload.h"

namespace qbs::bench {

// Parses --key=value flags into overrides consulted by the Env*() getters.
// Unknown flags abort with a usage message. Call first in main().
void InitBenchArgs(int argc, char** argv);

double EnvScale();
size_t EnvPairs();
double EnvBudgetSeconds();
size_t EnvThreads();
// Batch-query knobs (ROADMAP "Parallel QueryBatch tuning"): queries per
// QueryBatch call and the work-stealing chunk size inside a batch.
size_t EnvBatchSize();
size_t EnvGrain();

// Data directory for real datasets: --data_dir flag, else QBS_DATA_DIR,
// else "data".
std::string EnvDataDir();

// Registry datasets selected by QBS_BENCH_DATASETS (default: all 12).
std::vector<DatasetSpec> SelectedDatasets();

struct LoadedDataset {
  DatasetSpec spec;
  Graph graph;
  std::vector<QueryPair> pairs;
  // Where the graph came from: "stand-in" (synthetic generator), "cache"
  // (QBSGRF01 binary cache hit), "raw" (edge list parsed + cache written),
  // or "stand-in*" (real dataset requested but data missing).
  std::string source = "stand-in";
};

// Generates the dataset at the env scale and samples the env pair count.
LoadedDataset LoadDataset(const DatasetSpec& spec);

// One entry of the benchmark's dataset sweep: either a synthetic Table 1
// stand-in (the --datasets/QBS_BENCH_DATASETS path) or a real downloaded
// dataset (the --dataset/QBS_BENCH_DATASET path).
struct BenchDatasetRef {
  std::string id;    // stand-in abbreviation, or real-registry name
  bool real = false;
  DatasetSpec spec;  // the stand-in spec; only valid when !real
};

// The dataset sweep for the headline benches (table 1/2): every --dataset
// name (real data, loaded through the binary cache, stand-in fallback when
// data is absent) when given, else the --datasets stand-in selection.
// Unknown --dataset names abort with the available list.
std::vector<BenchDatasetRef> SelectedBenchDatasets();

// Loads one sweep entry: real refs resolve through workload/datasets.h
// (cache -> raw -> stand-in fallback; a non-paper dataset with no local
// data aborts), synthetic refs generate the stand-in at the env scale.
LoadedDataset LoadDataset(const BenchDatasetRef& ref);

// Fixed-width aligned table output. Also echoes each row as CSV to make
// figure series machine-readable (prefix "csv,"); the column names are
// echoed once as a "csvh," header row so downstream tooling
// (scripts/bench_compare.py, CI artifacts) is self-describing.
class TablePrinter {
 public:
  TablePrinter(std::string title, std::vector<std::string> columns,
               std::vector<int> widths);
  void Row(const std::vector<std::string>& cells);
  void Footer() const;

 private:
  std::vector<std::string> columns_;
  std::vector<int> widths_;
};

std::string HumanBytes(uint64_t bytes);
std::string FormatDouble(double value, int precision);
// Milliseconds with adaptive precision (microsecond regime keeps 3+
// decimals, like the paper's Table 2).
std::string FormatMs(double ms);
std::string FormatSeconds(double seconds);

}  // namespace qbs::bench

#endif  // QBS_BENCH_BENCH_COMMON_H_

// Regenerates Table 1: dataset statistics — |V|, |E|, max degree, average
// degree, average distance over sampled pairs, and the in-memory graph size
// |G| — alongside the paper's reference values for the real datasets.
//
// Default sweep: the 12 synthetic stand-ins. With --dataset=dblp,... (or
// QBS_BENCH_DATASET) the rows come from the real downloaded graphs via the
// binary dataset cache (tools/fetch_datasets.py + workload/datasets.h);
// the source column then reads cache/raw, and the measured |V|/|E| columns
// reproduce the paper's Table 1 for that dataset.

#include <cstdio>

#include "bench/bench_common.h"
#include "workload/query_workload.h"

namespace qbs::bench {
namespace {

void Run() {
  std::printf("Table 1: datasets (stand-ins at scale %.2f; paper values in "
              "the right columns)\n",
              EnvScale());
  TablePrinter table(
      "Table 1",
      {"Dataset", "source", "|V|", "|E|", "max.deg", "avg.deg", "avg.dist",
       "|G|", "paper|V|", "paper|E|", "paper.deg", "paper.dist"},
      {12, 9, 9, 10, 8, 8, 8, 10, 9, 9, 9, 10});
  for (const auto& ref : SelectedBenchDatasets()) {
    const LoadedDataset d = LoadDataset(ref);
    const auto dist = ComputeDistanceDistribution(d.graph, d.pairs);
    const bool paper = d.spec.paper_vertices_m > 0.0;
    table.Row({d.spec.abbrev, d.source, std::to_string(d.graph.NumVertices()),
               std::to_string(d.graph.NumEdges()),
               std::to_string(d.graph.MaxDegree()),
               FormatDouble(d.graph.AverageDegree(), 2),
               FormatDouble(dist.Mean(), 2), HumanBytes(d.graph.SizeBytes()),
               paper ? FormatDouble(d.spec.paper_vertices_m, 1) + "M" : "-",
               paper ? FormatDouble(d.spec.paper_edges_m, 1) + "M" : "-",
               paper ? FormatDouble(d.spec.paper_avg_deg, 2) : "-",
               paper ? FormatDouble(d.spec.paper_avg_dist, 1) : "-"});
  }
  table.Footer();
}

}  // namespace
}  // namespace qbs::bench

int main(int argc, char** argv) {
  qbs::bench::InitBenchArgs(argc, argv);
  qbs::bench::Run();
}

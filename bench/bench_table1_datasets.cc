// Regenerates Table 1: dataset statistics — |V|, |E|, max degree, average
// degree, average distance over sampled pairs, and the in-memory graph size
// |G| — for the 12 synthetic stand-ins, alongside the paper's reference
// values for the real datasets.

#include <cstdio>

#include "bench/bench_common.h"
#include "workload/query_workload.h"

namespace qbs::bench {
namespace {

void Run() {
  std::printf("Table 1: datasets (stand-ins at scale %.2f; paper values in "
              "the right columns)\n",
              EnvScale());
  TablePrinter table(
      "Table 1",
      {"Dataset", "|V|", "|E|", "max.deg", "avg.deg", "avg.dist", "|G|",
       "paper|V|", "paper|E|", "paper.deg", "paper.dist"},
      {12, 9, 9, 8, 8, 8, 10, 9, 9, 9, 10});
  for (const auto& spec : SelectedDatasets()) {
    const LoadedDataset d = LoadDataset(spec);
    const auto dist = ComputeDistanceDistribution(d.graph, d.pairs);
    table.Row({spec.abbrev, std::to_string(d.graph.NumVertices()),
               std::to_string(d.graph.NumEdges()),
               std::to_string(d.graph.MaxDegree()),
               FormatDouble(d.graph.AverageDegree(), 2),
               FormatDouble(dist.Mean(), 2), HumanBytes(d.graph.SizeBytes()),
               FormatDouble(spec.paper_vertices_m, 1) + "M",
               FormatDouble(spec.paper_edges_m, 1) + "M",
               FormatDouble(spec.paper_avg_deg, 2),
               FormatDouble(spec.paper_avg_dist, 1)});
  }
  table.Footer();
}

}  // namespace
}  // namespace qbs::bench

int main() { qbs::bench::Run(); }

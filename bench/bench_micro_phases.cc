// google-benchmark microbenchmarks of the individual QbS phases (labelling
// BFS, sketching, guided searching) and the baselines, on a fixed
// Barabási–Albert graph. Complements the table/figure harnesses with
// statistically robust per-operation timings.

#include <benchmark/benchmark.h>

#include "baselines/bfs_oracle.h"
#include "baselines/bibfs.h"
#include "core/qbs_index.h"
#include "gen/generators.h"
#include "workload/query_workload.h"

namespace qbs {
namespace {

struct Fixture {
  Fixture()
      : graph(BarabasiAlbert(20000, 4, 42)),
        pairs(SampleQueryPairs(graph, 512, 7)) {
    QbsOptions options;
    options.num_landmarks = 20;
    options.num_threads = 0;
    index = std::make_unique<QbsIndex>(QbsIndex::Build(graph, options));
    QbsOptions delta_options = options;
    delta_options.precompute_delta = true;
    index_delta =
        std::make_unique<QbsIndex>(QbsIndex::Build(graph, delta_options));
  }
  Graph graph;
  std::vector<QueryPair> pairs;
  std::unique_ptr<QbsIndex> index;
  std::unique_ptr<QbsIndex> index_delta;
};

Fixture& GetFixture() {
  static Fixture* const fixture = new Fixture();
  return *fixture;
}

void BM_LabelingConstructionSequential(benchmark::State& state) {
  auto& f = GetFixture();
  QbsOptions options;
  options.num_landmarks = static_cast<uint32_t>(state.range(0));
  options.num_threads = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(QbsIndex::Build(f.graph, options));
  }
}
BENCHMARK(BM_LabelingConstructionSequential)->Arg(5)->Arg(20)->Arg(50);

void BM_LabelingConstructionParallel(benchmark::State& state) {
  auto& f = GetFixture();
  QbsOptions options;
  options.num_landmarks = static_cast<uint32_t>(state.range(0));
  options.num_threads = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(QbsIndex::Build(f.graph, options));
  }
}
BENCHMARK(BM_LabelingConstructionParallel)->Arg(5)->Arg(20)->Arg(50);

void BM_Sketching(benchmark::State& state) {
  auto& f = GetFixture();
  size_t i = 0;
  for (auto _ : state) {
    const auto& p = f.pairs[i++ % f.pairs.size()];
    benchmark::DoNotOptimize(f.index->DistanceUpperBound(p.u, p.v));
  }
}
BENCHMARK(BM_Sketching);

void BM_QbsQuery(benchmark::State& state) {
  auto& f = GetFixture();
  size_t i = 0;
  for (auto _ : state) {
    const auto& p = f.pairs[i++ % f.pairs.size()];
    benchmark::DoNotOptimize(f.index->Query(p.u, p.v));
  }
}
BENCHMARK(BM_QbsQuery);

void BM_QbsQueryWithDelta(benchmark::State& state) {
  auto& f = GetFixture();
  size_t i = 0;
  for (auto _ : state) {
    const auto& p = f.pairs[i++ % f.pairs.size()];
    benchmark::DoNotOptimize(f.index_delta->Query(p.u, p.v));
  }
}
BENCHMARK(BM_QbsQueryWithDelta);

void BM_BiBfsQuery(benchmark::State& state) {
  auto& f = GetFixture();
  BiBfs bibfs(f.graph);
  size_t i = 0;
  for (auto _ : state) {
    const auto& p = f.pairs[i++ % f.pairs.size()];
    benchmark::DoNotOptimize(bibfs.Query(p.u, p.v));
  }
}
BENCHMARK(BM_BiBfsQuery);

void BM_OracleQuery(benchmark::State& state) {
  auto& f = GetFixture();
  size_t i = 0;
  for (auto _ : state) {
    const auto& p = f.pairs[i++ % f.pairs.size()];
    benchmark::DoNotOptimize(SpgByDoubleBfs(f.graph, p.u, p.v));
  }
}
BENCHMARK(BM_OracleQuery);

}  // namespace
}  // namespace qbs

BENCHMARK_MAIN();
